package fluidmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// base returns a well-behaved parameter set: 1 MB-equivalent units with
// upload-constrained downloads.
func base() Params {
	return Params{
		Lambda: 0.1, // one leecher every 10 s
		Theta:  0.001,
		Gamma:  0.02,  // seeds stay ~50 s
		Mu:     0.002, // 500 s to upload one copy
		C:      0.02,  // 50 s to download one copy at line rate
		Eta:    1,
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Lambda: -1, Mu: 1},
		{Mu: 0},
		{Mu: 1, Eta: 2},
		{Mu: 1, Theta: -0.1},
	}
	for _, p := range bad {
		if _, err := p.Integrate(0, 1, 10, 1); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := base().Integrate(0, 1, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestIntegrateConservesShape(t *testing.T) {
	traj, err := base().Integrate(0, 1, 10000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) < 100 {
		t.Fatalf("trajectory too short: %d", len(traj))
	}
	for _, s := range traj {
		if s.X < 0 || s.Y < 0 || math.IsNaN(s.X) || math.IsNaN(s.Y) {
			t.Fatalf("invalid state %+v", s)
		}
	}
	if traj[0].X != 0 || traj[0].Y != 1 {
		t.Fatalf("initial state %+v", traj[0])
	}
	if got := traj[len(traj)-1].T; math.Abs(got-10000) > 1e-6 {
		t.Fatalf("end time %f", got)
	}
}

func TestEquilibriumMatchesTheory(t *testing.T) {
	// With theta=0 and an upload-constrained system (c large), the flow
	// balance at equilibrium gives completion rate = lambda, so
	// y* = lambda/gamma, and mu(eta x* + y*) = lambda
	// => x* = (lambda - mu y*) / (mu eta) = lambda(1 - mu/gamma)/(mu eta).
	p := base()
	p.Theta = 0
	eq, ok, err := p.Equilibrium(1e6, 1e-10)
	if err != nil || !ok {
		t.Fatalf("no equilibrium: %v ok=%v", err, ok)
	}
	wantY := p.Lambda / p.Gamma
	wantX := (p.Lambda - p.Mu*wantY) / (p.Mu * p.Eta)
	if math.Abs(eq.Y-wantY) > 0.05*wantY {
		t.Fatalf("y* = %f, want %f", eq.Y, wantY)
	}
	if math.Abs(eq.X-wantX) > 0.05*wantX {
		t.Fatalf("x* = %f, want %f", eq.X, wantX)
	}
}

func TestMeanDownloadTimeLittle(t *testing.T) {
	p := base()
	p.Theta = 0
	T, err := p.MeanDownloadTime(1e6, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// With theta=0, T = x*/lambda. From the theory check above:
	wantY := p.Lambda / p.Gamma
	wantX := (p.Lambda - p.Mu*wantY) / (p.Mu * p.Eta)
	want := wantX / p.Lambda
	if math.Abs(T-want) > 0.05*want {
		t.Fatalf("T = %f, want %f", T, want)
	}
}

func TestDownloadCapBinds(t *testing.T) {
	// With a tiny download cap, the download side binds and the mean time
	// approaches 1/c.
	p := base()
	p.Theta = 0
	p.C = 0.0005 // 2000 s at line rate
	p.Mu = 1     // effectively infinite upload
	T, err := p.MeanDownloadTime(1e7, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / p.C
	if math.Abs(T-want) > 0.05*want {
		t.Fatalf("T = %f, want %f", T, want)
	}
}

func TestEtaReducesCapacity(t *testing.T) {
	// Lower eta (poorer piece diversity) must not shorten downloads.
	slow := base()
	slow.Eta = 0.3
	fast := base()
	fast.Eta = 1.0
	tSlow, err := slow.MeanDownloadTime(1e6, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	tFast, err := fast.MeanDownloadTime(1e6, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if tSlow < tFast {
		t.Fatalf("eta=0.3 gave faster downloads: %f < %f", tSlow, tFast)
	}
}

func TestFromSwarm(t *testing.T) {
	p := FromSwarm(0.2, 0.001, 0.05, 50<<10, 0, 48<<20, 1)
	if p.Lambda != 0.2 || p.Eta != 1 {
		t.Fatalf("params %+v", p)
	}
	if p.c() != math.Inf(1) {
		t.Fatal("uncapped download not Inf")
	}
	// Mu: 50 kB/s over 48 MB = one copy per ~983 s.
	if math.Abs(1/p.Mu-983) > 10 {
		t.Fatalf("1/mu = %f", 1/p.Mu)
	}
}

// Property: populations stay finite and non-negative for arbitrary sane
// parameters.
func TestQuickIntegrateStability(t *testing.T) {
	f := func(l, th, g, mu uint8) bool {
		p := Params{
			Lambda: float64(l) / 100,
			Theta:  float64(th) / 10000,
			Gamma:  float64(g)/1000 + 0.001,
			Mu:     float64(mu)/10000 + 0.0001,
			Eta:    1,
		}
		traj, err := p.Integrate(0, 1, 5000, 1)
		if err != nil {
			return false
		}
		for _, s := range traj {
			if s.X < 0 || s.Y < 0 || math.IsNaN(s.X) || math.IsInf(s.X, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
