package rarestfirst

import (
	"bytes"
	"strings"
	"testing"
)

// quickScale is the smallest sensible experiment, for unit tests.
func quickScale() Scale {
	s := BenchScale()
	s.MaxPeers = 40
	s.MaxContentMB = 8
	s.MaxPieces = 32
	s.Duration = 900
	s.Warmup = 300
	return s
}

func TestTableIFacade(t *testing.T) {
	tab := TableI()
	if len(tab) != 26 {
		t.Fatalf("TableI has %d rows", len(tab))
	}
	if tab[6].ID != 7 || tab[6].Leechers != 713 || tab[6].State != "steady" {
		t.Fatalf("torrent 7 row wrong: %+v", tab[6])
	}
	if tab[0].State != "no-seed" {
		t.Fatalf("torrent 1 state: %+v", tab[0])
	}
}

func TestRunRejectsBadScenarios(t *testing.T) {
	cases := []Scenario{
		{TorrentID: 0},
		{TorrentID: 27},
		{TorrentID: 7, Picker: "frobnicate"},
		{TorrentID: 7, SeedChoke: "medium"},
		{TorrentID: 7, LeecherChoke: "nice"},
	}
	for _, sc := range cases {
		if _, err := Run(sc); err == nil {
			t.Errorf("scenario %+v accepted", sc)
		}
	}
}

func TestRunSteadyTorrentReport(t *testing.T) {
	rep, err := Run(Scenario{TorrentID: 3, Scale: quickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TorrentID != 3 || rep.State != "steady" {
		t.Fatalf("report header: %+v", rep)
	}
	if !rep.LocalCompleted {
		t.Fatal("local peer did not complete on a steady torrent")
	}
	if rep.Entropy.AOverB.N == 0 || rep.Entropy.COverD.N == 0 {
		t.Fatal("no entropy ratios collected")
	}
	// Steady state: close-to-ideal entropy (medians materially above the
	// transient regime's near-zero values).
	if rep.Entropy.AOverB.P50 < 0.3 {
		t.Fatalf("steady a/b median %.3f suspiciously low", rep.Entropy.AOverB.P50)
	}
	if len(rep.Availability) == 0 {
		t.Fatal("no availability samples")
	}
	if rep.PieceCDF.N == 0 || rep.BlockCDF.N == 0 {
		t.Fatal("no interarrival data")
	}
}

func TestRunTransientTorrentReport(t *testing.T) {
	rep, err := Run(Scenario{TorrentID: 8, Scale: quickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != "transient" {
		t.Fatalf("state = %s", rep.State)
	}
	// Transient: rare pieces persist in the availability series.
	rare := 0
	for _, p := range rep.Availability {
		if p.GlobalRare > 0 {
			rare++
		}
	}
	if rare < len(rep.Availability)/2 {
		t.Fatalf("transient torrent had rare pieces in only %d/%d samples",
			rare, len(rep.Availability))
	}
	// Transient entropy is much lower than steady entropy.
	if rep.Entropy.AOverB.P50 > 0.5 {
		t.Fatalf("transient a/b median %.3f suspiciously high", rep.Entropy.AOverB.P50)
	}
}

func TestRunDeterminism(t *testing.T) {
	sc := Scenario{TorrentID: 3, Scale: quickScale()}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LocalDownloadSeconds != r2.LocalDownloadSeconds ||
		r1.Entropy.AOverB.P50 != r2.Entropy.AOverB.P50 ||
		r1.SeedServes != r2.SeedServes {
		t.Fatalf("runs diverge: %+v vs %+v", r1.Entropy, r2.Entropy)
	}
	// Different seed changes the outcome.
	sc.SeedOverride = 777
	r3, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r3.LocalDownloadSeconds == r1.LocalDownloadSeconds {
		t.Fatal("seed override had no effect")
	}
}

func TestPickerScenarios(t *testing.T) {
	for _, p := range []string{PickerRandom, PickerSequential, PickerGlobalRarest} {
		rep, err := Run(Scenario{TorrentID: 3, Scale: quickScale(), Picker: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.Scenario.Picker != p {
			t.Fatalf("scenario not echoed: %+v", rep.Scenario)
		}
	}
}

func TestChokerScenarios(t *testing.T) {
	if _, err := Run(Scenario{TorrentID: 3, Scale: quickScale(), SeedChoke: SeedChokeOld}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Scenario{TorrentID: 3, Scale: quickScale(), LeecherChoke: LeecherChokeTitForTat})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Spec, "torrent 3") {
		t.Fatalf("spec: %s", rep.Spec)
	}
}

func TestSmartSeedServeDuplicatesStayLow(t *testing.T) {
	// The slow initial seed of a transient torrent completes only a
	// handful of serves per run, so single-run duplicate fractions are
	// pure noise. Aggregate a few seeds and allow the counting noise one
	// serve's worth of slack; the deterministic structural invariant (the
	// smart policy never re-serves while an unserved needed piece exists)
	// is pinned by internal/swarm's TestSmartSeedServeNeverDuplicates.
	var baseDup, baseServes, smartDup, smartServes int
	for seed := int64(1); seed <= 4; seed++ {
		base, err := Run(Scenario{TorrentID: 8, Scale: quickScale(), SeedOverride: seed})
		if err != nil {
			t.Fatal(err)
		}
		smart, err := Run(Scenario{TorrentID: 8, Scale: quickScale(), SmartSeedServe: true, SeedOverride: seed})
		if err != nil {
			t.Fatal(err)
		}
		baseDup += base.DupSeedServes
		baseServes += base.SeedServes
		smartDup += smart.DupSeedServes
		smartServes += smart.SeedServes
	}
	if baseServes == 0 || smartServes == 0 {
		t.Fatal("initial seed idle")
	}
	fracBase := float64(baseDup) / float64(baseServes)
	fracSmart := float64(smartDup) / float64(smartServes)
	slack := 1.0 / float64(smartServes)
	if fracSmart > fracBase+slack {
		t.Fatalf("smart serve duplicate fraction %.3f (%d/%d) exceeds client-pick %.3f (%d/%d) beyond noise",
			fracSmart, smartDup, smartServes, fracBase, baseDup, baseServes)
	}
}

func TestWriteTextContainsAllFigures(t *testing.T) {
	rep, err := Run(Scenario{TorrentID: 3, Scale: quickScale()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, tag := range []string{"[fig1]", "[fig2-6]", "[fig7-pieces]", "[fig8-blocks]",
		"[fig9]", "[fig10]", "[fig11]", "[a4]"} {
		if !strings.Contains(out, tag) {
			t.Errorf("report text missing %s", tag)
		}
	}
}

func TestFreeRiderScenario(t *testing.T) {
	rep, err := Run(Scenario{TorrentID: 3, Scale: quickScale(), FreeRiderFraction: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinishedFree > 0 && rep.MeanDownloadFree < rep.MeanDownloadContrib {
		t.Fatalf("free riders beat contributors: %.0f < %.0f",
			rep.MeanDownloadFree, rep.MeanDownloadContrib)
	}
}

func TestDetectedStateMatchesCatalog(t *testing.T) {
	// The run must exhibit the state the catalog promises — the paper's
	// transient/steady criterion made into a self-check.
	cases := []struct {
		torrent int
		want    string
	}{
		{3, "steady"},
		{8, "transient"},
	}
	for _, c := range cases {
		rep, err := Run(Scenario{TorrentID: c.torrent, Scale: quickScale()})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DetectedState != c.want {
			t.Errorf("torrent %d: detected %q, catalog %q", c.torrent, rep.DetectedState, c.want)
		}
	}
}
