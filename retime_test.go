package rarestfirst

// Deferred-retime determinism at the report level: the dirty-node retime
// flush (PR 5) fans its compute phase across the lane worker pool, so a
// full run's report must be byte-identical whether that pool has one
// worker or many — the same acceptance gate the PR 4 choke lanes carry.
// CI repeats these under the race detector.

import (
	"testing"

	"rarestfirst/internal/swarm"
)

// retimeReport runs one scenario with an explicit worker count and
// returns the digest plus the raw report (for stats assertions).
func retimeReport(t *testing.T, sc Scenario, workers int) (string, *Report) {
	t.Helper()
	cfg, spec, err := buildConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LaneWorkers = workers
	res := swarm.New(cfg).Run()
	rep := buildReport(sc, spec, cfg, res)
	return reportDigest(t, rep), rep
}

// TestRetimeFlushParallelMatchesSerial pins the worker-count invariance
// of the parallel retime flush on a swarm big enough that choke-round
// instants mark hundreds of nodes dirty at once — well past the inline
// threshold, so the parallel fan-out path genuinely executes.
func TestRetimeFlushParallelMatchesSerial(t *testing.T) {
	sc := Scenario{
		Label:     "retime-flush-t7",
		TorrentID: 7,
		Scale: Scale{
			MaxPeers:     300,
			MaxContentMB: 16,
			MaxPieces:    64,
			Duration:     600,
			Warmup:       300,
			Seed:         42,
		},
		ChokeLanes:   true,
		SeedOverride: 11,
	}
	serial, srep := retimeReport(t, sc, 1)
	parallel, prep := retimeReport(t, sc, 8)
	if serial != parallel {
		t.Errorf("parallel retime-flush digest %s != serial digest %s", parallel, serial)
	}
	if again, _ := retimeReport(t, sc, 8); again != parallel {
		t.Errorf("parallel retime-flush run not reproducible: %s vs %s", again, parallel)
	}
	// The run must actually have exercised wide flushes, or the test
	// proves nothing about the parallel path.
	for _, rep := range []*Report{srep, prep} {
		if rep.Events.PeakShardWidth < 64 {
			t.Fatalf("peak retime shard width %d never reached the parallel fan-out threshold", rep.Events.PeakShardWidth)
		}
	}
}

// TestRetimeReportObservability checks the deferred-retiming counters
// surface through the public report on a plain (non-lane) run, and that
// the pool caps are reported.
func TestRetimeReportObservability(t *testing.T) {
	rep, err := Run(Scenario{Label: "retime-obs", TorrentID: 14, Scale: BenchScale()})
	if err != nil {
		t.Fatal(err)
	}
	ev := rep.Events
	if ev.DirtyFlushes == 0 || ev.RetimeBatches < ev.DirtyFlushes || ev.PeakShardWidth < 2 {
		t.Fatalf("retime stats missing from report: %+v", ev)
	}
	if ev.TimerPoolCap == 0 || ev.FlowPoolCap == 0 {
		t.Fatalf("pool caps missing from report: %+v", ev)
	}
}

// TestFlashCrowdSuiteMatchesPerfCase pins the registry's "flash-crowd-20k"
// default to the perf harness's FlashCrowd20kScenario, exactly as the
// huge-swarm pair is pinned (the registry cannot import perf.go without a
// package cycle and hand-copies the scale).
func TestFlashCrowdSuiteMatchesPerfCase(t *testing.T) {
	s, err := NewSuite("flash-crowd-20k", SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 1 {
		t.Fatalf("flash-crowd-20k expands to %d scenarios, want 1", len(s.Scenarios))
	}
	got, want := s.Scenarios[0], FlashCrowd20kScenario()
	if got.Scale != want.Scale {
		t.Fatalf("registry scale %+v != FlashCrowdScale %+v", got.Scale, want.Scale)
	}
	if got.TorrentID != want.TorrentID || !got.ChokeLanes || got.ChurnScale != want.ChurnScale ||
		got.HeapShards != want.HeapShards || got.BatchHaves != want.BatchHaves {
		t.Fatalf("registry spec %+v drifted from FlashCrowd20kScenario %+v", got, want)
	}
}
