package rarestfirst

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rarestfirst/internal/obs"
	"rarestfirst/internal/scenario"
)

// SuiteInfo names one registered scenario family.
type SuiteInfo struct {
	Name        string
	Description string
}

// Suites lists the registered scenario families, sorted by name. Each can
// be expanded into a runnable Suite with NewSuite.
func Suites() []SuiteInfo {
	defs := scenario.All()
	out := make([]SuiteInfo, 0, len(defs))
	for _, d := range defs {
		out = append(out, SuiteInfo{Name: d.Name, Description: d.Description})
	}
	return out
}

// SuiteNames lists the registered scenario families' names, sorted.
func SuiteNames() []string { return scenario.Names() }

// SuiteOptions parameterize the expansion of a registered scenario family
// into concrete Scenarios.
type SuiteOptions struct {
	// Scale applies to every scenario the family builds with a zero
	// Scale; the zero value leaves the per-scenario default.
	Scale Scale
	// Seeds fans every scenario out into one repeat per RNG seed
	// (SeedOverride); repeats share the scenario's Label, so suite
	// aggregation reports mean/stddev over the seeds. Empty means a
	// single run with the catalog seed.
	Seeds []int64
	// Torrents restricts catalog-style families to these Table I ids.
	Torrents []int
}

// Suite is an ordered batch of scenarios run and aggregated together.
type Suite struct {
	Name        string
	Description string
	Scenarios   []Scenario
}

// NewSuite expands the named scenario family (see Suites) under the
// options. The scenario order is deterministic.
func NewSuite(name string, o SuiteOptions) (Suite, error) {
	def, ok := scenario.Lookup(name)
	if !ok {
		return Suite{}, fmt.Errorf("rarestfirst: no scenario suite %q (have %v)", name, scenario.Names())
	}
	specs := def.Scenarios(scenario.Options{
		Scale:    o.Scale.toInternal(),
		Seeds:    o.Seeds,
		Torrents: o.Torrents,
	})
	s := Suite{Name: def.Name, Description: def.Description, Scenarios: make([]Scenario, 0, len(specs))}
	for _, sp := range specs {
		s.Scenarios = append(s.Scenarios, fromSpec(sp))
	}
	return s, nil
}

// Runner executes scenarios across a bounded worker pool. Every scenario
// is an independent deterministic simulation, so fanning them out changes
// wall-clock time only: results are identical to serial execution and are
// returned in input order regardless of completion order.
type Runner struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Heartbeat, when positive, emits one progress line to HeartbeatW
	// every interval while Run executes (plus a final line at
	// completion): elapsed wall time, finished/total scenarios, and —
	// when a process-wide obs registry is active — live counters
	// (events fired, arrivals, peak lane width). Long batches like
	// MegaSwarm then narrate themselves instead of running silent.
	Heartbeat time.Duration
	// HeartbeatW receives heartbeat lines; nil means os.Stderr.
	HeartbeatW io.Writer
}

func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the scenarios and returns their reports in input order.
// If any scenario fails, it returns the successful reports alongside the
// joined errors (failed slots are nil).
func (r Runner) Run(scs []Scenario) ([]*Report, error) {
	reports := make([]*Report, len(scs))
	errs := make([]error, len(scs))
	var done atomic.Int64
	stopBeat := r.startHeartbeat(&done, len(scs))
	defer stopBeat()
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < r.workers(len(scs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep, err := Run(scs[i])
				done.Add(1)
				if err != nil {
					errs[i] = fmt.Errorf("scenario %d (torrent %d %s): %w", i, scs[i].TorrentID, scs[i].Label, err)
					continue
				}
				reports[i] = rep
			}
		}()
	}
	for i := range scs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return reports, errors.Join(errs...)
}

// startHeartbeat launches the progress ticker when Heartbeat is set; the
// returned stop function prints the final line and joins the goroutine.
// With Heartbeat <= 0 both are no-ops.
func (r Runner) startHeartbeat(done *atomic.Int64, total int) func() {
	if r.Heartbeat <= 0 {
		return func() {}
	}
	w := r.HeartbeatW
	if w == nil {
		w = os.Stderr
	}
	start := time.Now()
	stop := make(chan struct{})
	finished := make(chan struct{})
	beat := func() {
		line := fmt.Sprintf("heartbeat: elapsed=%s runs=%d/%d",
			time.Since(start).Round(100*time.Millisecond), done.Load(), total)
		if reg := obs.Active(); reg != nil {
			if v, ok := reg.Value("sim_events_total"); ok {
				line += fmt.Sprintf(" events=%.0f", v)
			}
			if v, ok := reg.Value("swarm_arrivals_total"); ok {
				line += fmt.Sprintf(" arrivals=%.0f", v)
			}
			if v, ok := reg.Value("sim_peak_lane_width"); ok && v > 0 {
				line += fmt.Sprintf(" peak_lane=%.0f", v)
			}
		}
		fmt.Fprintln(w, line)
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(r.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				beat()
			}
		}
	}()
	return func() {
		close(stop)
		<-finished
		beat() // final line: runs=total, closing counter values
	}
}

// RunSuite executes the suite, aggregates its reports, and — when the
// suite pairs live scenarios with sim twins under shared labels — derives
// the sim-vs-live cross-validation section.
func (r Runner) RunSuite(s Suite) (*SuiteReport, error) {
	reports, err := r.Run(s.Scenarios)
	if err != nil {
		return nil, err
	}
	aggs := AggregateReports(reports)
	return &SuiteReport{
		Name:            s.Name,
		Description:     s.Description,
		Reports:         reports,
		Aggregates:      aggs,
		CrossValidation: crossValidate(aggs),
	}, nil
}
