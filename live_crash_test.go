package rarestfirst

// Crash-recovery acceptance tests: the crash-* registry families must
// survive SIGKILLed peers mid-transfer on BOTH backends. Determinism is
// asserted strictly on the sim twin (every crash/rejoin draw comes from
// the engine RNG, so same-seed runs are digest-identical); the live side
// is asserted up to schedule determinism — the kill schedule replays under
// a fixed seed, real-TCP timing does not.

import (
	"reflect"
	"strings"
	"testing"
)

// TestCrashSimDeterministic: two same-seed runs of the crash sim spec must
// produce digest-identical reports with nonzero crash counters.
func TestCrashSimDeterministic(t *testing.T) {
	sc := Scenario{
		TorrentID: 8,
		Crashes:   "flashcrowd-kill",
		// Duration 60 matters: the sim staggers initial joins over the
		// first 30 sim-seconds, so the crash window (a fraction of the
		// deadline) must stretch past the stagger for kills to land.
		Scale:        Scale{MaxPeers: 8, MaxContentMB: 1, MaxPieces: 32, Duration: 60},
		SeedOverride: 42,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := reportDigest(t, r1), reportDigest(t, r2); d1 != d2 {
		t.Fatalf("same-seed crash runs differ: %s vs %s", d1, d2)
	}
	if r1.Faults["swarm_peer_crash"] == 0 || r1.Faults["swarm_peer_resume"] == 0 {
		t.Fatalf("crash counters missing: %v", r1.Faults)
	}
	if r1.Faults["swarm_peer_crash"] != r1.Faults["swarm_peer_resume"] {
		t.Fatalf("crashes and resumes disagree: %v", r1.Faults)
	}

	// A different seed reshuffles the kill schedule and the trajectory.
	sc.SeedOverride = 43
	r3, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Faults, r3.Faults) && r1.LocalDownloadSeconds == r3.LocalDownloadSeconds {
		t.Errorf("different seeds produced identical crash trajectories")
	}
}

// TestCrashPlanValidation: an unknown crash plan must fail loudly on both
// backends' config paths.
func TestCrashPlanValidation(t *testing.T) {
	_, err := Run(Scenario{TorrentID: 8, Crashes: "no-such-plan"})
	if err == nil || !strings.Contains(err.Error(), "no-such-plan") {
		t.Fatalf("unknown crash plan accepted: %v", err)
	}
	_, err = Run(Scenario{TorrentID: 8, Crashes: "no-such-plan", Live: true})
	if err == nil || !strings.Contains(err.Error(), "no-such-plan") {
		t.Fatalf("live backend accepted unknown crash plan: %v", err)
	}
}

// TestCrashSuiteEndToEnd drives the crash-flashcrowd family through
// RunSuite: half the non-instrumented leechers are SIGKILLed mid-transfer
// and restarted from durable resume state — on the simulator and on real
// TCP loopback — and both land in the cross-validation table.
func TestCrashSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("crash loopback swarm takes tens of seconds")
	}
	suite, err := NewSuite("crash-flashcrowd", SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range suite.Scenarios {
		if sc.Crashes != "flashcrowd-kill" {
			t.Fatalf("scenario %d carries crash plan %q, want \"flashcrowd-kill\"", i, sc.Crashes)
		}
	}

	sr, err := Runner{}.RunSuite(suite)
	if err != nil {
		t.Fatal(err)
	}
	var liveRep *Report
	for i, rep := range sr.Reports {
		if rep == nil {
			t.Fatalf("crash scenario %d produced no report", i)
		}
		if len(rep.Faults) == 0 {
			t.Errorf("crash run %d (live=%v) reported no fault counters", i, rep.Scenario.Live)
		}
		if rep.Scenario.Live {
			liveRep = rep
		}
	}
	if liveRep == nil {
		t.Fatal("no live report in the crash suite")
	}

	// Live acceptance: with the flashcrowd-kill plan, at least a quarter
	// of the leechers were killed mid-transfer and restarted...
	leechers := liveRep.Arrivals
	killed := liveRep.Faults["peer_crash"]
	restarted := liveRep.Faults["peer_resume"]
	if killed*4 < leechers {
		t.Errorf("only %d of %d leechers killed, want >= 25%%", killed, leechers)
	}
	if restarted != killed {
		t.Errorf("killed %d but restarted %d", killed, restarted)
	}
	// ...every restarted peer completed (the restart voids the victim's
	// pre-kill completion, so FinishedContrib counts post-restart
	// completions), and the local instrumented peer was never a victim.
	if liveRep.FinishedContrib != leechers-1 {
		t.Errorf("finished %d of %d non-local leechers after restarts", liveRep.FinishedContrib, leechers-1)
	}
	if !liveRep.LocalCompleted {
		t.Error("instrumented local peer did not complete")
	}
	// ...resume state did real work, and the corrupted-resume victim's
	// claims all failed their re-hash (then re-downloaded to completion).
	if liveRep.Faults["resume_bytes_saved"] == 0 {
		t.Errorf("no resume bytes saved across restarts: %v", liveRep.Faults)
	}
	if liveRep.Faults["resume_hash_fail"] == 0 {
		t.Errorf("corrupted resume counted no hash failures: %v", liveRep.Faults)
	}

	if len(sr.CrossValidation) != 1 {
		t.Fatalf("want 1 cross-validation pair, got %d", len(sr.CrossValidation))
	}
	pair := sr.CrossValidation[0]
	if pair.Sim.Live || !pair.Live.Live || pair.Sim.Label != pair.Live.Label {
		t.Fatalf("cross-validation pair malformed: %+v", pair)
	}
	if pair.Sim.Faults["swarm_peer_crash"] == 0 {
		t.Fatalf("sim twin recorded no crashes: %v", pair.Sim.Faults)
	}
}
