package rarestfirst

import (
	"fmt"

	"rarestfirst/internal/live"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// runLive executes sc as a real-TCP loopback swarm and adapts the
// harvested instrumentation onto the exact swarm.Result/Config shape the
// simulator produces, so buildReport — and therefore every figure
// statistic, AggregateReports and the JSONL sink — is shared verbatim
// between the two backends.
func runLive(sc Scenario) (*Report, error) {
	spec, ok := torrents.ByID(sc.TorrentID)
	if !ok {
		return nil, fmt.Errorf("rarestfirst: no torrent %d in Table I", sc.TorrentID)
	}
	lcfg, err := live.FromSpec(sc.toSpec())
	if err != nil {
		return nil, err
	}
	lres, err := live.Run(lcfg)
	if err != nil {
		return nil, err
	}
	// The report builder only reads the config's content geometry (CDF
	// windows scale with piece/block counts); populate exactly that.
	cfg := swarm.Config{
		NumPieces: lcfg.NumPieces,
		PieceSize: lcfg.PieceSize,
		BlockSize: metainfo.BlockSize,
	}
	res := &swarm.Result{
		Collector:           lres.Collector,
		LocalCompleted:      lres.LocalCompleted,
		LocalDownloadTime:   lres.LocalDownloadSeconds,
		Arrivals:            lres.Arrivals,
		FinishedContrib:     lres.FinishedContrib,
		MeanDownloadContrib: lres.MeanDownloadContrib,
		EndTime:             lres.EndSeconds,
	}
	return buildReport(sc, spec, cfg, res), nil
}
