module rarestfirst

go 1.22
