package rarestfirst

// Lane-mode determinism at the report level: the parallel choke-round
// lanes (Scenario.ChokeLanes) must produce byte-identical reports whether
// the compute phases run serially or on a worker pool. This is the
// acceptance gate for the intra-swarm sharding path — reportDigest covers
// every derived statistic, so any scheduling leak shows up here.

import (
	"testing"

	"rarestfirst/internal/swarm"
)

// laneDigest runs one lane-mode scenario with an explicit worker count
// and returns its report digest. LaneWorkers is internal scheduling (not
// part of Scenario), so the config is built and overridden directly.
func laneDigest(t *testing.T, sc Scenario, workers int) string {
	t.Helper()
	cfg, spec, err := buildConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LaneWorkers = workers
	res := swarm.New(cfg).Run()
	return reportDigest(t, buildReport(sc, spec, cfg, res))
}

func TestChokeLanesParallelMatchesSerial(t *testing.T) {
	for _, sc := range []Scenario{
		{Label: "lanes-steady-t7", TorrentID: 7, Scale: BenchScale(), ChokeLanes: true, SeedOverride: 5},
		{Label: "lanes-freeride-t14", TorrentID: 14, Scale: BenchScale(), ChokeLanes: true, FreeRiderFraction: 0.2, SeedOverride: 6},
	} {
		serial := laneDigest(t, sc, 1)
		parallel := laneDigest(t, sc, 8)
		if serial != parallel {
			t.Errorf("%s: parallel lane digest %s != serial digest %s", sc.Label, parallel, serial)
		}
		if again := laneDigest(t, sc, 8); again != parallel {
			t.Errorf("%s: parallel lane run not reproducible: %s vs %s", sc.Label, again, parallel)
		}
	}
}

// TestHugeSwarmSuiteMatchesPerfCase pins the registry's "huge-swarm"
// default to the perf harness's HugeSwarmScenario: the registry cannot
// import perf.go (package cycle) and hand-copies the scale, so this test
// is what keeps `swarmsim -suite huge-swarm` running the exact workload
// BENCH_PR*.json records.
func TestHugeSwarmSuiteMatchesPerfCase(t *testing.T) {
	s, err := NewSuite("huge-swarm", SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 1 {
		t.Fatalf("huge-swarm expands to %d scenarios, want 1", len(s.Scenarios))
	}
	got, want := s.Scenarios[0], HugeSwarmScenario()
	if got.Scale != want.Scale {
		t.Fatalf("registry scale %+v != HugeSwarmScale %+v", got.Scale, want.Scale)
	}
	if got.TorrentID != want.TorrentID || !got.ChokeLanes ||
		got.HeapShards != want.HeapShards || got.BatchHaves != want.BatchHaves {
		t.Fatalf("registry spec %+v drifted from HugeSwarmScenario %+v", got, want)
	}
}

// TestChokeLanesReportObservability checks the lane stats surface through
// the public report, and that non-lane runs keep them zero (so existing
// JSONL serializations are unchanged via omitempty).
func TestChokeLanesReportObservability(t *testing.T) {
	rep, err := Run(Scenario{Label: "lanes-obs", TorrentID: 14, Scale: BenchScale(), ChokeLanes: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events.PeakLaneWidth < 2 || rep.Events.LaneBatches == 0 || rep.Events.LaneEvents == 0 {
		t.Fatalf("lane stats missing from report: %+v", rep.Events)
	}
	plain, err := Run(Scenario{Label: "no-lanes", TorrentID: 14, Scale: BenchScale()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events.PeakLaneWidth != 0 || plain.Events.LaneBatches != 0 || plain.Events.LaneEvents != 0 {
		t.Fatalf("non-lane run reports lane stats: %+v", plain.Events)
	}
}
