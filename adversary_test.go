package rarestfirst

// Byzantine-hardening acceptance tests: the adv-* suites must run their
// sim and live rows to completion with adversaries in the swarm and the
// invariant checker on, the fault/ban counters must surface through the
// shared Report path on both backends, and the invariant checker must not
// move a single golden digest.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestGoldenDigestsUnchangedWithDebugChecks pins the invariant checker's
// purity contract at the public API: every golden scenario re-run with
// DebugChecks on must hash to the recorded golden digest (after
// normalizing the scenario flag itself out of the serialization). A
// checker that perturbs one RNG draw or availability count fails this.
func TestGoldenDigestsUnchangedWithDebugChecks(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	for _, sc := range goldenScenarios() {
		sc.DebugChecks = true
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Label, err)
		}
		// The flag is part of the serialized scenario; clear it so the
		// digest isolates the trajectory.
		rep.Scenario.DebugChecks = false
		if got := reportDigest(t, rep); got != want[sc.Label] {
			t.Errorf("%s: digest changed with DebugChecks on\n  got  %s\n  want %s\n"+
				"the invariant checker must be a pure read", sc.Label, got, want[sc.Label])
		}
	}
}

// TestAdvSuiteEndToEnd drives the three adv-* Byzantine families through
// Runner.RunSuite: sim and real-TCP rows under one label, adversaries in
// both swarms, invariant checker on, fault counters cross-validated.
func TestAdvSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback swarms take tens of seconds")
	}
	for _, name := range []string{"adv-poison", "adv-liar", "adv-flood"} {
		name := name
		t.Run(name, func(t *testing.T) {
			suite, err := NewSuite(name, SuiteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sr, err := Runner{}.RunSuite(suite)
			if err != nil {
				t.Fatal(err)
			}
			var simFaults, nobanFaults map[string]int
			for i, rep := range sr.Reports {
				if rep == nil {
					t.Fatalf("scenario %d produced no report", i)
				}
				sc := suite.Scenarios[i]
				if sc.Live {
					// The honest instrumented leecher completes verified
					// content despite the adversaries.
					if !rep.LocalCompleted {
						t.Errorf("live %s: local peer did not complete", sc.Label)
					}
					continue
				}
				if !rep.LocalCompleted {
					t.Errorf("sim %s: local peer did not complete", sc.Label)
				}
				if sc.AdversaryNoBan {
					nobanFaults = rep.Faults
				} else if simFaults == nil {
					simFaults = rep.Faults
				}
			}
			if simFaults == nil {
				t.Fatal("no sim report captured")
			}
			switch name {
			case "adv-poison":
				if simFaults["swarm_piece_hash_fail"] == 0 || simFaults["swarm_peer_banned_poison"] == 0 {
					t.Errorf("sim poison faults missing: %v", simFaults)
				}
				if nobanFaults == nil {
					t.Fatal("adv-poison suite has no NoBan measurement row")
				}
				if nobanFaults["swarm_wasted_bytes"] == 0 {
					t.Errorf("NoBan row recorded no wasted bytes: %v", nobanFaults)
				}
				if nobanFaults["swarm_peer_banned_poison"] != 0 {
					t.Errorf("NoBan row recorded bans: %v", nobanFaults)
				}
			case "adv-liar":
				if simFaults["swarm_fake_have_timeout"] == 0 {
					t.Errorf("sim liar faults missing: %v", simFaults)
				}
			case "adv-flood":
				if simFaults["swarm_flood_announce"] == 0 {
					t.Errorf("sim flood faults missing: %v", simFaults)
				}
			}

			// Sim and live rows sharing the label must pair up in the
			// cross-validation table.
			if len(sr.CrossValidation) != 1 {
				t.Fatalf("want 1 cross-validation pair, got %d", len(sr.CrossValidation))
			}
			pair := sr.CrossValidation[0]
			if pair.Sim.Live || !pair.Live.Live || pair.Sim.Label != pair.Live.Label {
				t.Fatalf("cross-validation pair malformed: %+v", pair)
			}
			var buf bytes.Buffer
			sr.WriteText(&buf)
			out := buf.String()
			if !strings.Contains(out, "sim vs live cross-validation") {
				t.Fatalf("suite text missing cross-validation section:\n%s", out)
			}
			if !strings.Contains(out, "faults:") {
				t.Fatalf("suite text missing fault counters:\n%s", out)
			}
		})
	}
}
